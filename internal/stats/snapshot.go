package stats

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Snapshot is a point-in-time flattening of a Registry: every metric
// reduced to named scalar samples, sorted by name. Two snapshots of
// identical simulation states serialize to identical bytes, which is what
// makes exported metrics diffable across runs and worker counts.

// Sample is one flattened scalar.
type Sample struct {
	Name  string
	Kind  Kind
	Value float64
}

// Snapshot is an immutable, name-sorted set of samples.
type Snapshot struct {
	Samples []Sample
	index   map[string]int
}

// Snapshot flattens every registered metric into a sorted snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Samples: make([]Sample, 0, len(r.flat))}
	for _, m := range r.metrics {
		kind := m.kind
		name := m.name
		m.emit(func(suffix string, v float64) {
			s.Samples = append(s.Samples, Sample{Name: name + suffix, Kind: kind, Value: v})
		})
	}
	sort.Slice(s.Samples, func(i, j int) bool { return s.Samples[i].Name < s.Samples[j].Name })
	s.index = make(map[string]int, len(s.Samples))
	for i := range s.Samples {
		s.index[s.Samples[i].Name] = i
	}
	return s
}

// Len returns the number of samples.
func (s *Snapshot) Len() int { return len(s.Samples) }

// Names returns the sorted sample names.
func (s *Snapshot) Names() []string {
	out := make([]string, len(s.Samples))
	for i := range s.Samples {
		out[i] = s.Samples[i].Name
	}
	return out
}

// Lookup returns the sample with the given name.
func (s *Snapshot) Lookup(name string) (Sample, bool) {
	if i, ok := s.index[name]; ok {
		return s.Samples[i], true
	}
	return Sample{}, false
}

// Value returns the named sample's value, or 0 when absent.
func (s *Snapshot) Value(name string) float64 {
	if i, ok := s.index[name]; ok {
		return s.Samples[i].Value
	}
	return 0
}

// Uint returns the named sample as an integer count (counters and peaks
// are exact up to 2^53), or 0 when absent.
func (s *Snapshot) Uint(name string) uint64 { return uint64(s.Value(name)) }

// formatValue renders a sample value deterministically: integral values
// print as integers, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes the snapshot as one flat, name-sorted JSON object
// mapping sample name to value. The encoding is deterministic: identical
// snapshots produce identical bytes. Names never need escaping (the
// registry validates them to [a-z0-9_.]).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s.writeObject(bw, "")
	bw.WriteString("\n")
	return bw.Flush()
}

// WriteJSONObject writes the same object without a trailing newline,
// indenting inner lines with the given prefix, so the snapshot can be
// embedded as a value inside a larger hand-written JSON document.
func (s *Snapshot) WriteJSONObject(w io.Writer, indent string) error {
	bw := bufio.NewWriter(w)
	s.writeObject(bw, indent)
	return bw.Flush()
}

func (s *Snapshot) writeObject(bw *bufio.Writer, indent string) {
	bw.WriteString("{\n")
	for i := range s.Samples {
		sep := ","
		if i == len(s.Samples)-1 {
			sep = ""
		}
		fmt.Fprintf(bw, "%s  %q: %s%s\n", indent, s.Samples[i].Name, formatValue(s.Samples[i].Value), sep)
	}
	bw.WriteString(indent + "}")
}

// WriteCSV writes the snapshot as name,kind,value rows with a header.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("name,kind,value\n")
	for i := range s.Samples {
		fmt.Fprintf(bw, "%s,%s,%s\n", s.Samples[i].Name, s.Samples[i].Kind,
			formatValue(s.Samples[i].Value))
	}
	return bw.Flush()
}
