// Package stats provides the lightweight statistics primitives used
// throughout the simulator: named counters, peak/average trackers for
// resource occupancy (paper Table 9), and ratio helpers for the occupancy
// and characterization tables.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
//
//simlint:shardlocal -- each instrument instance belongs to the component that registered it, which lives on exactly one shard; registries only read them at snapshot points with all shards parked
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Peak tracks the maximum of a sampled quantity together with the number of
// samples, e.g. peak protocol-thread occupancy of the integer queue.
//
//simlint:shardlocal -- owned by the sampling component's shard, like Counter
type Peak struct {
	max     int
	samples uint64
	sum     uint64
}

// Sample records one observation.
func (p *Peak) Sample(v int) {
	if v > p.max {
		p.max = v
	}
	p.samples++
	p.sum += uint64(v)
}

// SampleN records the same observation n times — the bulk path for cycles
// the kernel elides. Equivalent to n Sample(v) calls.
func (p *Peak) SampleN(v int, n uint64) {
	if n == 0 {
		return
	}
	if v > p.max {
		p.max = v
	}
	p.samples += n
	p.sum += uint64(v) * n
}

// Max returns the largest observation (zero if none).
func (p *Peak) Max() int { return p.max }

// Mean returns the average observation (zero if none).
func (p *Peak) Mean() float64 {
	if p.samples == 0 {
		return 0
	}
	return float64(p.sum) / float64(p.samples)
}

// Samples returns the number of observations.
func (p *Peak) Samples() uint64 { return p.samples }

// Reset clears all state.
func (p *Peak) Reset() { *p = Peak{} }

// State exposes the tracker's raw fields for snapshot serialization.
func (p *Peak) State() (max int, samples, sum uint64) {
	return p.max, p.samples, p.sum
}

// SetState restores the tracker's raw fields from a snapshot.
func (p *Peak) SetState(max int, samples, sum uint64) {
	p.max, p.samples, p.sum = max, samples, sum
}

// Ratio returns num/den as a float, or 0 when den == 0.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Percent returns 100*num/den, or 0 when den == 0.
func Percent(num, den uint64) float64 {
	return 100 * Ratio(num, den)
}

// Set is a named collection of counters, handy for dumping component state.
// names is kept insertion-sorted so rendering and iteration never re-sort.
type Set struct {
	names    []string
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Counter returns (creating on first use) the counter with the given name.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{}
	s.counters[name] = c
	i := sort.SearchStrings(s.names, name)
	s.names = append(s.names, "")
	copy(s.names[i+1:], s.names[i:])
	s.names[i] = name
	return c
}

// Get returns the value of a named counter (zero if absent).
func (s *Set) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns the counter names in sorted order. The returned slice is a
// copy; callers may keep it.
func (s *Set) Names() []string {
	return append([]string(nil), s.names...)
}

// Each calls fn for every counter in sorted name order, so exporters never
// reach into the backing map.
func (s *Set) Each(fn func(name string, c *Counter)) {
	for _, n := range s.names {
		fn(n, s.counters[n])
	}
}

// String renders the set sorted by name, one counter per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.names {
		fmt.Fprintf(&b, "%s=%d\n", n, s.counters[n].Value())
	}
	return b.String()
}
