package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("got %d, want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestPeak(t *testing.T) {
	var p Peak
	for _, v := range []int{3, 7, 2, 7, 1} {
		p.Sample(v)
	}
	if p.Max() != 7 {
		t.Fatalf("max=%d, want 7", p.Max())
	}
	if got := p.Mean(); got != 4 {
		t.Fatalf("mean=%v, want 4", got)
	}
	if p.Samples() != 5 {
		t.Fatalf("samples=%d, want 5", p.Samples())
	}
}

func TestPeakEmpty(t *testing.T) {
	var p Peak
	if p.Max() != 0 || p.Mean() != 0 {
		t.Fatal("empty peak should report zeros")
	}
}

func TestPeakMaxIsUpperBound(t *testing.T) {
	f := func(vals []uint8) bool {
		var p Peak
		max := 0
		for _, v := range vals {
			p.Sample(int(v))
			if int(v) > max {
				max = int(v)
			}
		}
		return p.Max() == max && p.Mean() <= float64(max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(1, 0) != 0 || Percent(1, 0) != 0 {
		t.Fatal("division by zero must yield 0")
	}
	if Ratio(1, 4) != 0.25 {
		t.Fatal("ratio wrong")
	}
	if Percent(1, 4) != 25 {
		t.Fatal("percent wrong")
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Inc()
	s.Counter("b").Inc()
	if s.Get("a") != 1 || s.Get("b") != 3 || s.Get("missing") != 0 {
		t.Fatalf("unexpected values: a=%d b=%d", s.Get("a"), s.Get("b"))
	}
	out := s.String()
	if !strings.Contains(out, "a=1") || !strings.Contains(out, "b=3") {
		t.Fatalf("bad string: %q", out)
	}
	if strings.Index(out, "a=") > strings.Index(out, "b=") {
		t.Fatal("output not sorted")
	}
}
