package workload

import "smtpsim/internal/isa"

// The six applications. Every builder produces, per thread, a stream whose
// loop structure, instruction mix, data partitioning and sharing pattern
// follow the corresponding program's published behaviour; absolute sizes
// are scaled (Params.Scale) so full machine sweeps complete in seconds.

// buildFFT models the blocked 1M-point radix-sqrt(n) six-step FFT: local
// butterfly passes over the thread's row partition separated by an
// all-to-all blocked transpose (the dominant communication), with
// hand-inserted prefetching and padding/tiling (each element's line is
// touched once per pass).
func buildFFT(p Params) *Workload {
	w := &Workload{Name: "FFT"}
	const bytesPerPoint = 16 // complex double
	points := scaleInt(4096, p.Scale, 64*p.sizing())
	placeBlocked(w, regionA, bytesPerPoint, points, p)
	placeBlocked(w, regionB, bytesPerPoint, points, p)
	w.Barriers = append(w.Barriers, BarrierDef{Obj: 1, N: p.Threads})

	pointsPerLine := lineSize / bytesPerPoint // 8
	for g := 0; g < p.Threads; g++ {
		gn := newGen(p, g)
		lo, hi := partition(points, p.Threads, g)
		myLines := (hi - lo) / pointsPerLine

		for pass := 0; pass < 2; pass++ {
			// Local butterfly pass over my partition: load a line of
			// points, ~10 FP ops per point, store back.
			gn.loop(myLines, func() {
				base := regionA + uint64(lo*bytesPerPoint)
				a := base + uint64(gn.rng.Intn(maxInt(myLines, 1)))*lineSize
				gn.prefetch(a+lineSize, false)
				r := gn.load(a, true)
				gn.load(a+8, true)
				gn.fpCompute(20, r) // butterflies over the 8 points of the line
				gn.store(a, gn.faux)
				gn.store(a+8, gn.faux)
			})
			gn.barrier(1)

			// Transpose: read a block from every other thread's partition
			// of B (all-to-all), write into mine in A.
			blockLines := maxInt(myLines/maxInt(p.Threads, 1), 1)
			for t := 0; t < p.Threads; t++ {
				src := (g + t) % p.Threads // staggered to avoid hot spots
				slo, shi := partition(points, p.Threads, src)
				srcLines := maxInt((shi-slo)/pointsPerLine, 1)
				// Each thread reads a disjoint slice of the source
				// partition: a transpose touches every line exactly once.
				idx := 0
				gn.loop(blockLines, func() {
					srcLine := (g*blockLines + idx) % srcLines
					idx++
					ra := regionB + uint64(slo*bytesPerPoint) +
						uint64(srcLine)*lineSize
					wa := regionA + uint64(lo*bytesPerPoint) +
						uint64(gn.rng.Intn(maxInt(myLines, 1)))*lineSize
					gn.prefetch(ra+lineSize, false)
					r := gn.load(ra, true)
					gn.fpCompute(5, r)
					gn.store(wa, gn.faux)
				})
			}
			gn.barrier(1)
		}
		w.Streams = append(w.Streams, gn.ins)
	}
	return w
}

// buildFFTW models the 8192x16x16-point 3D FFT with 32x32 blocking: like
// FFT but with three (per-dimension) rounds, finer-grained transpose blocks
// touching more remote lines per phase, and heavier integer address
// arithmetic (FFTW's codelets are register-hungry — the paper found it the
// one application sensitive to integer register count).
func buildFFTW(p Params) *Workload {
	w := &Workload{Name: "FFTW"}
	const bytesPerPoint = 16
	points := scaleInt(4096, p.Scale, 64*p.sizing())
	placeBlocked(w, regionA, bytesPerPoint, points, p)
	placeBlocked(w, regionB, bytesPerPoint, points, p)
	w.Barriers = append(w.Barriers, BarrierDef{Obj: 1, N: p.Threads})

	pointsPerLine := lineSize / bytesPerPoint
	for g := 0; g < p.Threads; g++ {
		gn := newGen(p, g)
		lo, hi := partition(points, p.Threads, g)
		myLines := maxInt((hi-lo)/pointsPerLine, 1)

		for dim := 0; dim < 3; dim++ {
			// Codelet pass: more integer work and registers than FFT.
			gn.loop(myLines, func() {
				a := regionA + uint64(lo*bytesPerPoint) +
					uint64(gn.rng.Intn(myLines))*lineSize
				gn.intCompute(6) // twiddle index arithmetic
				r := gn.load(a, true)
				gn.load(a+8, true)
				gn.fpCompute(10, r)
				gn.intCompute(4)
				gn.store(a, gn.faux)
			})
			gn.barrier(1)
			// Fine-grained transpose: half-block reads from every peer.
			for t := 0; t < p.Threads; t++ {
				src := (g + t + 1) % p.Threads
				slo, shi := partition(points, p.Threads, src)
				srcLines := maxInt((shi-slo)/pointsPerLine, 1)
				idx := 0
				blk := maxInt(3*myLines/maxInt(2*p.Threads, 2), 1)
				gn.loop(blk, func() {
					srcLine := (g*blk + idx) % srcLines
					idx++
					ra := regionB + uint64(slo*bytesPerPoint) +
						uint64(srcLine)*lineSize
					gn.intCompute(2)
					r := gn.load(ra, true)
					gn.fpCompute(4, r)
					gn.store(regionA+uint64(lo*bytesPerPoint)+
						uint64(gn.rng.Intn(myLines))*lineSize, gn.faux)
				})
			}
			gn.barrier(1)
		}
		w.Streams = append(w.Streams, gn.ins)
	}
	return w
}

// buildLU models the 512x512 blocked dense LU factorization: per step the
// diagonal-block owner factorizes locally (O(b^3) FP work), then every
// thread owning a perimeter block reads the diagonal block (one-to-many
// broadcast) and updates its own blocks with heavy local FP compute —
// computation dominates communication, which is why the paper finds LU
// insensitive to controller integration.
func buildLU(p Params) *Workload {
	w := &Workload{Name: "LU"}
	const blockBytes = 16 * 16 * 8 // 16x16 doubles
	steps := scaleInt(6, p.Scale, 3)
	totalBlocks := 4 * p.sizing() // fixed problem size for strong scaling
	placeBlocked(w, regionA, blockBytes, totalBlocks, p)
	w.Barriers = append(w.Barriers, BarrierDef{Obj: 1, N: p.Threads})

	blockAddr := func(b int) uint64 { return regionA + uint64(b*blockBytes) }
	ownerOf := func(b int) int {
		for t := 0; t < p.Threads; t++ {
			lo, hi := partition(totalBlocks, p.Threads, t)
			if b >= lo && b < hi {
				return t
			}
		}
		return p.Threads - 1
	}
	linesPerBlock := blockBytes / lineSize // 16

	for g := 0; g < p.Threads; g++ {
		gn := newGen(p, g)
		myLo, myHi := partition(totalBlocks, p.Threads, g)
		for k := 0; k < steps; k++ {
			diagBlock := k % totalBlocks
			diag := blockAddr(diagBlock) // this step's pivot block
			if g == ownerOf(diagBlock) {
				// Factorize the diagonal block: O(b^3) local FP.
				gn.loop(linesPerBlock, func() {
					a := diag + uint64(gn.rng.Intn(linesPerBlock))*lineSize
					r := gn.load(a, true)
					gn.fpCompute(72, r)
					gn.emit(instFPDiv())
					gn.store(a, gn.faux)
				})
			}
			gn.barrier(1)
			// Perimeter update: read the (remote) diagonal block once,
			// then update my blocks with large FP kernels.
			gn.loop(linesPerBlock/2, func() {
				gn.load(diag+uint64(gn.rng.Intn(linesPerBlock))*lineSize, true)
				gn.fpCompute(10, gn.faux)
			})
			for b := myLo; b < myHi; b++ {
				mine := blockAddr(b)
				gn.loop(linesPerBlock, func() {
					a := mine + uint64(gn.rng.Intn(linesPerBlock))*lineSize
					r := gn.load(a, true)
					gn.fpCompute(64, r)
					gn.store(a, gn.faux)
				})
			}
			gn.barrier(1)
		}
		w.Streams = append(w.Streams, gn.ins)
	}
	return w
}

// buildOcean models the 514x514-grid multigrid solver: red-black stencil
// sweeps over each thread's band of rows, sharing only the boundary rows
// with the two neighbouring threads, with frequent barriers between sweeps
// (and the paper's optimized test-lock-test-set-unlock global error lock
// once per iteration).
func buildOcean(p Params) *Workload {
	w := &Workload{Name: "Ocean"}
	rowBytes := 8 * lineSize // one grid row = 8 lines
	rows := scaleInt(64, p.Scale, 4*p.sizing())
	placeBlocked(w, regionA, rowBytes, rows, p)
	w.Barriers = append(w.Barriers, BarrierDef{Obj: 1, N: p.Threads})
	errLock := regionC // global error lock line
	w.Places = append(w.Places, PlaceDef{Addr: regionC, Size: 2 * lineSize, Home: 0})

	rowAddr := func(r, l int) uint64 {
		return regionA + uint64(r)*uint64(rowBytes) + uint64(l)*lineSize
	}
	iters := scaleInt(4, p.Scale, 2)
	linesPerRow := rowBytes / lineSize

	for g := 0; g < p.Threads; g++ {
		gn := newGen(p, g)
		lo, hi := partition(rows, p.Threads, g)
		for it := 0; it < iters; it++ {
			for r := lo; r < hi; r++ {
				row := r
				gn.loop(linesPerRow, func() {
					l := gn.rng.Intn(linesPerRow)
					// 5-point stencil: my row plus the rows above/below
					// (remote lines at the band boundaries).
					c := gn.load(rowAddr(row, l), true)
					if row > 0 {
						gn.load(rowAddr(row-1, l), true)
					}
					if row < rows-1 {
						gn.load(rowAddr(row+1, l), true)
					}
					gn.fpCompute(6, c)
					gn.store(rowAddr(row, l), gn.faux)
				})
			}
			// Global error reduction under the (optimized) lock.
			gn.lockAcquire(7, errLock)
			r := gn.load(errLock+lineSize, true)
			gn.fpCompute(2, r)
			gn.store(errLock+lineSize, gn.faux)
			gn.lockRelease(7, errLock)
			gn.barrier(1)
		}
		w.Streams = append(w.Streams, gn.ins)
	}
	return w
}

// buildRadix models the 2M-key radix sort (radix 32): a local histogram
// pass, a prefix-sum step serialized through thread 0 reading every
// histogram (one-to-many), and the permutation pass whose scattered remote
// writes are the application's signature all-to-all write traffic.
func buildRadix(p Params) *Workload {
	w := &Workload{Name: "Radix-Sort"}
	keys := scaleInt(8192, p.Scale, 128*p.sizing())
	const keyBytes = 8
	placeBlocked(w, regionA, keyBytes, keys, p) // source keys
	placeBlocked(w, regionB, keyBytes, keys, p) // destination
	w.Barriers = append(w.Barriers, BarrierDef{Obj: 1, N: p.Threads})
	// Per-thread histograms: one region, thread-blocked.
	const histBytes = 32 * 8
	placeBlocked(w, regionC, histBytes, p.Threads, p)

	keysPerLine := lineSize / keyBytes
	for g := 0; g < p.Threads; g++ {
		gn := newGen(p, g)
		lo, hi := partition(keys, p.Threads, g)
		myLines := maxInt((hi-lo)/keysPerLine, 1)
		for pass := 0; pass < 2; pass++ {
			// Histogram: stream my keys, integer binning.
			gn.loop(myLines, func() {
				a := regionA + uint64(lo*keyBytes) + uint64(gn.rng.Intn(myLines))*lineSize
				gn.prefetch(a+lineSize, false)
				gn.load(a, false)
				gn.load(a+64, false)
				gn.intCompute(20)               // bin all 16 keys of the line
				gn.condBranch(gn.rng.Bool(0.3)) // bin compare
				gn.condBranch(gn.rng.Bool(0.7))
				gn.store(regionC+uint64(g*histBytes)+uint64(gn.rng.Intn(4))*64, gn.iaux)
			})
			gn.barrier(1)
			// Prefix sum: thread 0 reads every histogram and publishes
			// global offsets.
			if g == 0 {
				for t := 0; t < p.Threads; t++ {
					gn.load(regionC+uint64(t*histBytes), false)
					gn.intCompute(2)
				}
				for t := 0; t < p.Threads; t++ {
					gn.store(regionC+uint64(t*histBytes)+128, gn.iaux)
				}
			}
			gn.barrier(1)
			// Permutation: my keys scatter across the whole destination
			// array — remote exclusive misses everywhere.
			gn.loop(myLines, func() {
				src := regionA + uint64(lo*keyBytes) + uint64(gn.rng.Intn(myLines))*lineSize
				dst := regionB + uint64(gn.rng.Intn(keys/keysPerLine))*lineSize
				k := gn.load(src, false)
				gn.intCompute(10)      // rank computation for the line's keys
				gn.prefetch(dst, true) // prefetch exclusive
				gn.store(dst, k)
			})
			gn.barrier(1)
		}
		w.Streams = append(w.Streams, gn.ins)
	}
	return w
}

// buildWater models the 1024-molecule N-body code over 3 time steps:
// compute-dominated O(n^2) pairwise force evaluation with read-sharing of
// molecule records, lock-protected global accumulations, and migratory
// updates of each thread's own molecules. Its protocol activity is tiny
// and its protocol branches barely train — both paper observations.
func buildWater(p Params) *Workload {
	w := &Workload{Name: "Water"}
	molecules := scaleInt(128, p.Scale, 8*p.sizing())
	molBytes := lineSize // one record per line
	placeBlocked(w, regionA, molBytes, molecules, p)
	w.Places = append(w.Places, PlaceDef{Addr: regionC, Size: 4 * lineSize, Home: 0})
	w.Barriers = append(w.Barriers, BarrierDef{Obj: 1, N: p.Threads})

	steps := scaleInt(3, p.Scale, 2)
	molAddr := func(i int) uint64 { return regionA + uint64(i)*uint64(molBytes) }
	for g := 0; g < p.Threads; g++ {
		gn := newGen(p, g)
		lo, hi := partition(molecules, p.Threads, g)
		for s := 0; s < steps; s++ {
			// Pairwise forces: each of my molecules against a sample of
			// all others (heavy FP per interaction).
			for i := lo; i < hi; i++ {
				mine := molAddr(i)
				gn.loop(6, func() {
					// The cutoff radius keeps most interactions local; a
					// fraction reaches molecules owned by other threads.
					var other uint64
					if gn.rng.Bool(0.25) {
						other = molAddr(gn.rng.Intn(molecules))
					} else {
						other = molAddr(lo + gn.rng.Intn(maxInt(hi-lo, 1)))
					}
					r := gn.load(other, true)
					gn.load(mine, true)
					gn.fpCompute(44, r)
					gn.emit(instFPDiv())
					gn.fpCompute(14, gn.faux)
					gn.emit(instFPDiv())
					gn.condBranch(gn.rng.Bool(0.5)) // cutoff test: untrainable
				})
				gn.store(mine, gn.faux) // accumulate into my record
			}
			// Global potential-energy accumulation under a lock.
			gn.lockAcquire(9, regionC)
			r := gn.load(regionC+lineSize, true)
			gn.fpCompute(3, r)
			gn.store(regionC+lineSize, gn.faux)
			gn.lockRelease(9, regionC)
			gn.barrier(1)
			// Update phase: migratory writes to my own molecules.
			for i := lo; i < hi; i++ {
				r := gn.load(molAddr(i), true)
				gn.fpCompute(24, r)
				gn.store(molAddr(i), gn.faux)
			}
			gn.barrier(1)
		}
		w.Streams = append(w.Streams, gn.ins)
	}
	return w
}

// instFPDiv is a double-precision divide (19 cycles, unpipelined class).
func instFPDiv() isa.Instr {
	return isa.Instr{Op: isa.OpFPDivDP, Dst: isa.FirstFP, Src1: isa.FirstFP + 1}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
