package workload

import (
	"testing"

	"smtpsim/internal/machine"
)

// TestDirectoryCachePressure pins the Int64KB-vs-Int512KB differentiation
// of the paper's single-node results (Base beats Int64KB by 20% on
// Radix-Sort, Figure 4): once the directory footprint exceeds 64 KB, the
// small directory cache must miss more and run slower. Skipped in -short
// mode (the footprint needs a scale-48 problem).
func TestDirectoryCachePressure(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a large problem to exceed the 64KB directory cache")
	}
	w := Build(Params{App: Radix, Threads: 1, Nodes: 1, Scale: 48, Seed: 2})
	run := func(model machine.Model) (cycles uint64, misses uint64) {
		m := machine.New(machine.Config{Model: model, Nodes: 1, AppThreads: 1})
		Attach(m, w)
		cyc, done := m.Run(100_000_000)
		if !done {
			t.Fatalf("%v did not complete", model)
		}
		return uint64(cyc), m.Nodes[0].PP.Engine.DirMisses()
	}
	c512, m512 := run(machine.Int512KB)
	c64, m64 := run(machine.Int64KB)
	if m64 <= m512 {
		t.Fatalf("64KB dir cache misses (%d) must exceed 512KB's (%d)", m64, m512)
	}
	if c64 <= c512 {
		t.Fatalf("Int64KB (%d cycles) must be slower than Int512KB (%d)", c64, c512)
	}
}
