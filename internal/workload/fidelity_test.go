package workload

import (
	"testing"

	"smtpsim/internal/isa"
)

// Fidelity checks against the paper's Table 1 descriptions.

func countOps(s []isa.Instr, pred func(isa.Op) bool) int {
	n := 0
	for i := range s {
		if pred(s[i].Op) {
			n++
		}
	}
	return n
}

func TestPrefetchingMatchesPaper(t *testing.T) {
	// "where possible all applications other than Water use hand-inserted
	// prefetch and prefetch exclusive instructions" (§3). This port inserts
	// them where they matter most: FFT's transpose streams and Radix's
	// permutation writes (see DESIGN.md §4).
	for _, a := range []App{FFT, Radix} {
		w := Build(params(a, 4, 4))
		pf := 0
		for _, s := range w.Streams {
			pf += countOps(s, func(o isa.Op) bool {
				return o == isa.OpPrefetch || o == isa.OpPrefetchX
			})
		}
		if pf == 0 {
			t.Errorf("%v must prefetch", a)
		}
	}
	w := Build(params(Water, 4, 4))
	for _, s := range w.Streams {
		if countOps(s, func(o isa.Op) bool {
			return o == isa.OpPrefetch || o == isa.OpPrefetchX
		}) != 0 {
			t.Error("Water does not prefetch in the paper")
		}
	}
}

func TestRadixUsesPrefetchExclusive(t *testing.T) {
	// The permutation phase's scattered writes use prefetch-exclusive.
	w := Build(params(Radix, 4, 4))
	px := 0
	for _, s := range w.Streams {
		px += countOps(s, func(o isa.Op) bool { return o == isa.OpPrefetchX })
	}
	if px == 0 {
		t.Fatal("Radix-Sort's permutation must prefetch exclusive")
	}
}

func TestOnlyOceanAndWaterLock(t *testing.T) {
	// Ocean has the global error lock; Water has the global-sum lock; the
	// other four synchronize with barriers only.
	hasLock := func(a App) bool {
		w := Build(params(a, 4, 4))
		for _, s := range w.Streams {
			for i := range s {
				if s[i].Op == isa.OpSyncWait && s[i].SyncTok>>60 == 2 {
					return true
				}
			}
		}
		return false
	}
	for _, a := range []App{Ocean, Water} {
		if !hasLock(a) {
			t.Errorf("%v must use a lock", a)
		}
	}
	for _, a := range []App{FFT, FFTW, LU, Radix} {
		if hasLock(a) {
			t.Errorf("%v should be barrier-only", a)
		}
	}
}

func TestWaterIsOneMoleculePerLine(t *testing.T) {
	// Migratory records: each molecule occupies its own coherence line so
	// record updates transfer whole-line ownership.
	w := Build(params(Water, 2, 2))
	for _, s := range w.Streams {
		for i := range s {
			in := &s[i]
			if in.Op == isa.OpStore && in.Addr >= regionA && in.Addr < regionB {
				if in.Addr%128 != 0 {
					t.Fatalf("molecule store to %#x not line-aligned", in.Addr)
				}
			}
		}
	}
}

func TestFFTTransposeIsDisjoint(t *testing.T) {
	// Each regionB line must be read by exactly one thread per pass (the
	// transpose touches every line once; overlap caused eager-exclusive
	// ping-pong storms).
	w := Build(params(FFT, 4, 4))
	readers := map[uint64]map[int]bool{}
	for g, s := range w.Streams {
		for i := range s {
			in := &s[i]
			if in.Op == isa.OpLoad && in.Addr >= regionB && in.Addr < regionC {
				line := in.Addr &^ 127
				if readers[line] == nil {
					readers[line] = map[int]bool{}
				}
				readers[line][g] = true
			}
		}
	}
	for line, rs := range readers {
		if len(rs) > 1 {
			t.Fatalf("transpose line %#x read by %d threads", line, len(rs))
		}
	}
}

func TestStreamsEndAtABarrier(t *testing.T) {
	// Every thread's final synchronization is the same barrier instance, so
	// no thread races past the end of the program.
	for _, a := range Apps() {
		w := Build(params(a, 4, 2))
		var lastTok uint64
		for g, s := range w.Streams {
			var tok uint64
			for i := range s {
				if s[i].Op == isa.OpSyncWait && s[i].SyncTok>>60 == 1 {
					tok = s[i].SyncTok
				}
			}
			if g == 0 {
				lastTok = tok
			} else if tok != lastTok {
				t.Fatalf("%v: thread %d final barrier %#x != thread 0's %#x", a, g, tok, lastTok)
			}
		}
	}
}
