package workload

import (
	"testing"

	"smtpsim/internal/machine"
)

// TestRadixSMTpRegression pins the store-buffer drain deadlock once hit by
// Radix on a 2-node 2-way SMTp machine: pending application stores (out of
// MSHRs) must not stop protocol directory stores from draining.
func TestRadixSMTpRegression(t *testing.T) {
	w := Build(Params{App: Radix, Threads: 4, Nodes: 2, Scale: 0.25, Seed: 6})
	m := machine.New(machine.Config{Model: machine.SMTp, Nodes: 2, AppThreads: 2})
	Attach(m, w)
	if _, done := m.Run(10_000_000); !done {
		t.Fatal("Radix deadlocked on SMTp")
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestAllAppsAllModelsIntegration is the broad cross-product smoke test:
// every application on every machine model, small scale, with the machine
// invariant checker at the end.
func TestAllAppsAllModelsIntegration(t *testing.T) {
	for _, app := range Apps() {
		w := Build(Params{App: app, Threads: 4, Nodes: 4, Scale: 0.2, Seed: 11})
		for _, model := range machine.Models() {
			m := machine.New(machine.Config{Model: model, Nodes: 4, AppThreads: 1})
			Attach(m, w)
			if _, done := m.Run(20_000_000); !done {
				t.Fatalf("%v on %v did not complete", app, model)
			}
			if err := m.CheckCoherence(); err != nil {
				t.Fatalf("%v on %v: %v", app, model, err)
			}
		}
	}
}

// TestLU8n4wRegression pins the fetch livelock once hit at 4-way: threads
// whose code lines conflict in one I-cache set must still make fetch
// progress (the per-thread fetch-stream buffer guarantees it).
func TestLU8n4wRegression(t *testing.T) {
	w := Build(Params{App: LU, Threads: 32, Nodes: 8, Scale: 0.5, Seed: 43, SizeFor: 32})
	m := machine.New(machine.Config{Model: machine.SMTp, Nodes: 8, AppThreads: 4})
	Attach(m, w)
	if _, done := m.Run(30_000_000); !done {
		t.Fatal("LU 8-node 4-way livelocked")
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
