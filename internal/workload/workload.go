// Package workload synthesizes the six shared-memory applications of the
// paper's Table 1 — FFT, FFTW, LU, Ocean, Radix-Sort, and Water — as
// deterministic per-thread instruction streams.
//
// The paper runs compiled MIPS binaries; this reproduction has no MIPS
// toolchain, so each application is modeled by its communication and
// computation signature instead (DESIGN.md §4): instruction mix, loop/PC
// structure (so the I-cache and branch predictors behave), data
// partitioning with page placement, the application's sharing pattern
// (all-to-all transposes, block broadcast, nearest-neighbour stencils,
// scattered permutation writes, migratory records), hand-inserted
// prefetching, and software tree barriers and test-lock-test-set-unlock
// locks executed as real loads and stores so synchronization produces real
// coherence traffic.
package workload

import (
	"fmt"

	"smtpsim/internal/addrmap"
	"smtpsim/internal/isa"
	"smtpsim/internal/machine"
	"smtpsim/internal/pipeline"
	"smtpsim/internal/sim"
)

// App names one of the six applications.
type App int

// Applications (paper Table 1).
const (
	FFT App = iota
	FFTW
	LU
	Ocean
	Radix
	Water
	NumApps
)

var appNames = [NumApps]string{"FFT", "FFTW", "LU", "Ocean", "Radix-Sort", "Water"}

// String names the application.
func (a App) String() string {
	if int(a) < len(appNames) {
		return appNames[a]
	}
	return "App?"
}

// Apps lists all six applications in paper order.
func Apps() []App { return []App{FFT, FFTW, LU, Ocean, Radix, Water} }

// Params selects an application instance.
type Params struct {
	App     App
	Threads int     // global application thread count
	Nodes   int     // machine size (for page placement)
	Scale   float64 // problem-size multiplier; 1.0 = test/bench scale
	Seed    uint64

	// SizeFor anchors the problem size to a thread count other than
	// Threads, so strong-scaling (speedup) studies run the same problem at
	// every configuration. Zero means Threads.
	SizeFor int
}

// sizing returns the thread count problem sizes are derived from.
func (p Params) sizing() int {
	if p.SizeFor > 0 {
		return p.SizeFor
	}
	return p.Threads
}

// BarrierDef declares a barrier object and its participant count.
type BarrierDef struct {
	Obj uint64
	N   int
}

// PlaceDef assigns a data range to a home node.
type PlaceDef struct {
	Addr, Size uint64
	Home       int
}

// Workload is a built application: one instruction stream per thread plus
// the synchronization and placement metadata the machine needs.
type Workload struct {
	Name     string
	Params   Params
	Streams  [][]isa.Instr
	Barriers []BarrierDef
	Places   []PlaceDef
}

// TotalInstructions returns the dynamic instruction count across threads.
func (w *Workload) TotalInstructions() int {
	n := 0
	for _, s := range w.Streams {
		n += len(s)
	}
	return n
}

// SliceSource adapts a materialized stream to pipeline.InstrSource.
type SliceSource struct {
	ins []isa.Instr
	pos int

	// syncAt caches the index of the next OpSyncWait at or after pos
	// (len(ins) once none remain); the forward scan in SyncDistance resumes
	// from it, so the whole stream is scanned at most once per run.
	syncAt int
}

// NewSliceSource wraps a stream.
func NewSliceSource(ins []isa.Instr) *SliceSource { return &SliceSource{ins: ins, syncAt: -1} }

// Peek implements pipeline.InstrSource.
func (s *SliceSource) Peek() *isa.Instr {
	if s.pos >= len(s.ins) {
		return nil
	}
	return &s.ins[s.pos]
}

// Advance implements pipeline.InstrSource.
func (s *SliceSource) Advance() { s.pos++ }

// Done implements pipeline.InstrSource.
func (s *SliceSource) Done() bool { return s.pos >= len(s.ins) }

// Pos returns the number of consumed instructions (machine snapshots).
func (s *SliceSource) Pos() int { return s.pos }

// SetPos repositions the stream (machine restore). The sync-distance cache
// is invalidated so the next SyncDistance rescans from the new position.
func (s *SliceSource) SetPos(p int) {
	s.pos = p
	s.syncAt = -1
}

// SyncDistance implements pipeline.SyncDistancer: the number of not-yet-
// consumed instructions before the next OpSyncWait, or -1 when none
// remain. Amortized O(1): the scan position only moves forward.
func (s *SliceSource) SyncDistance() int {
	if s.syncAt < s.pos {
		i := s.pos
		for i < len(s.ins) && s.ins[i].Op != isa.OpSyncWait {
			i++
		}
		s.syncAt = i
	}
	if s.syncAt >= len(s.ins) {
		return -1
	}
	return s.syncAt - s.pos
}

var (
	_ pipeline.InstrSource   = (*SliceSource)(nil)
	_ pipeline.SyncDistancer = (*SliceSource)(nil)
)

// Build synthesizes the selected application.
func Build(p Params) *Workload {
	if p.Threads < 1 {
		panic("workload: need at least one thread")
	}
	if p.Nodes < 1 {
		p.Nodes = 1
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	var w *Workload
	switch p.App {
	case FFT:
		w = buildFFT(p)
	case FFTW:
		w = buildFFTW(p)
	case LU:
		w = buildLU(p)
	case Ocean:
		w = buildOcean(p)
	case Radix:
		w = buildRadix(p)
	case Water:
		w = buildWater(p)
	default:
		panic(fmt.Sprintf("workload: unknown app %d", p.App))
	}
	w.Params = p
	return w
}

// Attach installs the workload on a machine: fresh instruction sources,
// barrier definitions, and page placement. The same Workload can be
// attached to many machines (each model of a comparison sees the identical
// stream).
func Attach(m *machine.Machine, w *Workload) {
	if m.GlobalThreads() != len(w.Streams) {
		panic(fmt.Sprintf("workload: %d streams but machine has %d threads",
			len(w.Streams), m.GlobalThreads()))
	}
	for _, b := range w.Barriers {
		m.Sync.DefineBarrier(b.Obj, b.N)
	}
	for _, pl := range w.Places {
		m.AMap.PlaceRange(pl.Addr, pl.Size, addrmap.NodeID(pl.Home%m.Cfg.Nodes))
	}
	for g, s := range w.Streams {
		m.SetSource(g, NewSliceSource(s))
	}
}

// Data-region bases (all below addrmap.DirBase, i.e. coherent data).
const (
	regionA    uint64 = 1 << 32 // primary array / matrix / grid / keys
	regionB    uint64 = 2 << 32 // secondary array (transpose target, etc.)
	regionC    uint64 = 3 << 32 // histograms / global sums
	regionSync uint64 = 4 << 32 // barrier flag and release lines
	lineSize          = addrmap.CoherenceLineSize
)

// gen builds one thread's instruction stream.
type gen struct {
	p       Params
	gtid    int
	ins     []isa.Instr
	pc      uint64
	rng     *sim.Rand
	faux    isa.Reg           // rotating FP destination
	iaux    isa.Reg           // rotating integer destination
	barSeq  map[uint64]uint64 // per-barrier instance counters
	lockSeq uint64
}

func newGen(p Params, gtid int) *gen {
	return &gen{
		p:    p,
		gtid: gtid,
		// Stagger thread code so same-offset loop bodies do not alias in
		// the I-cache sets (threads of a real program share one text
		// segment; synthetic per-thread copies must not all map to set 0).
		pc:     addrmap.AppCodeBase + uint64(gtid)<<21 + uint64(gtid%29)*1216,
		rng:    sim.NewRand(p.Seed*1000003 + uint64(gtid)*7919 + uint64(p.App)),
		barSeq: make(map[uint64]uint64),
	}
}

func (g *gen) emit(in isa.Instr) {
	in.PC = g.pc
	g.pc += 4
	g.ins = append(g.ins, in)
}

func (g *gen) intReg() isa.Reg {
	g.iaux = 1 + (g.iaux)%12
	return g.iaux
}

func (g *gen) fpReg() isa.Reg {
	g.faux = isa.FirstFP + (g.faux-isa.FirstFP+1)%12
	return g.faux
}

// load emits an 8-byte load into an FP register (fp=true) or integer
// register.
func (g *gen) load(addr uint64, fp bool) isa.Reg {
	var dst isa.Reg
	if fp {
		dst = g.fpReg()
	} else {
		dst = g.intReg()
	}
	g.emit(isa.Instr{Op: isa.OpLoad, Dst: dst, Addr: addr, Size: 8})
	return dst
}

// store emits an 8-byte store of src (RegNone allowed).
func (g *gen) store(addr uint64, src isa.Reg) {
	g.emit(isa.Instr{Op: isa.OpStore, Src1: src, Addr: addr, Size: 8})
}

// prefetch emits a non-binding prefetch (exclusive when excl).
func (g *gen) prefetch(addr uint64, excl bool) {
	op := isa.OpPrefetch
	if excl {
		op = isa.OpPrefetchX
	}
	g.emit(isa.Instr{Op: op, Addr: addr, Size: 8})
}

// fpCompute emits n dependent floating-point operations consuming src.
func (g *gen) fpCompute(n int, src isa.Reg) {
	prev := src
	if !prev.Valid() {
		prev = g.fpReg()
	}
	for i := 0; i < n; i++ {
		dst := g.fpReg()
		op := isa.OpFPALU
		if i%3 == 1 {
			op = isa.OpFPMul
		}
		g.emit(isa.Instr{Op: op, Dst: dst, Src1: prev})
		prev = dst
	}
}

// intCompute emits n integer operations (address arithmetic and the like).
func (g *gen) intCompute(n int) {
	for i := 0; i < n; i++ {
		dst := g.intReg()
		g.emit(isa.Instr{Op: isa.OpIntALU, Dst: dst, Src1: 1 + (dst)%8})
	}
}

// loop emits `iters` repetitions of body at a stable code address: every
// iteration re-emits the same PCs and ends with a backward branch, taken on
// all but the last iteration — exactly what trains the BTB and the local
// history predictor like a real inner loop.
func (g *gen) loop(iters int, body func()) {
	if iters <= 0 {
		return
	}
	top := g.pc
	for it := 0; it < iters; it++ {
		g.pc = top
		body()
		g.emit(isa.Instr{
			Op:     isa.OpBranch,
			Src1:   1,
			Taken:  it != iters-1,
			Target: top,
		})
	}
}

// condBranch emits a data-dependent forward branch with the given taken
// outcome (target = skip one instruction, which is emitted only on the
// not-taken path to keep the stream linear).
func (g *gen) condBranch(taken bool) {
	g.emit(isa.Instr{Op: isa.OpBranch, Src1: 2, Taken: taken, Target: g.pc + 8})
	if !taken {
		g.intCompute(1)
	} else {
		g.pc += 4 // the skipped slot
	}
}

// barrier emits a software tree barrier: an arrival store to this thread's
// flag line (invalidating the parent's copy), the ordering wait, and
// release-line loads that fetch lines written remotely.
func (g *gen) barrier(obj uint64) {
	inst := g.barSeq[obj]
	g.barSeq[obj] = inst + 1
	flags := regionSync + obj*64*lineSize
	parent := (g.gtid - 1) / 2
	// Arrival: store to a line the parent reads (tree fan-in traffic).
	g.store(flags+uint64(parent)*lineSize, 1)
	g.emit(isa.Instr{Op: isa.OpSyncWait, SyncTok: machine.BarrierToken(obj, inst)})
	// Release: the root writes the release line; everyone re-reads it.
	release := flags + 48*lineSize + (inst%8)*lineSize
	if g.gtid == 0 {
		g.store(release, 1)
	}
	g.load(release, false)
}

// lockAcquire emits test-lock-test-set for the lock object whose flag lives
// at lockLine.
func (g *gen) lockAcquire(obj uint64, lockLine uint64) {
	g.load(lockLine, false) // test
	g.emit(isa.Instr{Op: isa.OpSyncWait, SyncTok: machine.LockAcqToken(obj, uint64(g.gtid)<<32|g.lockSeq)})
	g.load(lockLine, false) // test again (it moved to us)
	g.store(lockLine, 1)    // set
}

// lockRelease emits unlock.
func (g *gen) lockRelease(obj uint64, lockLine uint64) {
	g.store(lockLine, 1)
	g.emit(isa.Instr{Op: isa.OpSyncWait, SyncTok: machine.LockRelToken(obj, uint64(g.gtid)<<32|g.lockSeq)})
	g.lockSeq++
}

// scaleInt applies the problem-size multiplier with a floor.
func scaleInt(base int, scale float64, min int) int {
	v := int(float64(base) * scale)
	if v < min {
		return min
	}
	return v
}

// partition splits n items across P threads, returning [lo, hi) for g.
func partition(n, threads, g int) (int, int) {
	per := n / threads
	lo := g * per
	hi := lo + per
	if g == threads-1 {
		hi = n
	}
	return lo, hi
}

// placeBlocked assigns each thread's partition of a region to that thread's
// node ("proper page placement to minimize remote accesses", §3).
func placeBlocked(w *Workload, base uint64, bytesPerItem, items int, p Params) {
	for t := 0; t < p.Threads; t++ {
		lo, hi := partition(items, p.Threads, t)
		node := t * p.Nodes / p.Threads
		w.Places = append(w.Places, PlaceDef{
			Addr: base + uint64(lo*bytesPerItem),
			Size: uint64((hi - lo) * bytesPerItem),
			Home: node,
		})
	}
}
