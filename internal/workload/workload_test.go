package workload

import (
	"testing"

	"smtpsim/internal/addrmap"
	"smtpsim/internal/isa"
	"smtpsim/internal/machine"
)

func params(a App, threads, nodes int) Params {
	return Params{App: a, Threads: threads, Nodes: nodes, Scale: 1, Seed: 42}
}

func TestBuildAllApps(t *testing.T) {
	for _, a := range Apps() {
		w := Build(params(a, 4, 4))
		if len(w.Streams) != 4 {
			t.Fatalf("%v: %d streams, want 4", a, len(w.Streams))
		}
		if w.TotalInstructions() < 1000 {
			t.Fatalf("%v: only %d instructions", a, w.TotalInstructions())
		}
		for g, s := range w.Streams {
			if len(s) == 0 {
				t.Fatalf("%v: thread %d has no work", a, g)
			}
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	for _, a := range Apps() {
		w1 := Build(params(a, 2, 2))
		w2 := Build(params(a, 2, 2))
		if w1.TotalInstructions() != w2.TotalInstructions() {
			t.Fatalf("%v: nondeterministic build", a)
		}
		for g := range w1.Streams {
			for i := range w1.Streams[g] {
				if w1.Streams[g][i] != w2.Streams[g][i] {
					t.Fatalf("%v: stream %d instr %d differs", a, g, i)
				}
			}
		}
	}
}

func TestStreamsWellFormed(t *testing.T) {
	for _, a := range Apps() {
		w := Build(params(a, 4, 4))
		for g, s := range w.Streams {
			for i := range s {
				in := &s[i]
				if in.PC < addrmap.AppCodeBase {
					t.Fatalf("%v thread %d: PC %#x below the app code region", a, g, in.PC)
				}
				if in.Op.IsMem() && !in.Op.IsUncached() {
					if !addrmap.IsAppData(in.Addr) {
						t.Fatalf("%v thread %d: memory op to non-data address %#x", a, g, in.Addr)
					}
				}
				if in.Op == isa.OpBranch && in.Taken && in.Target == 0 {
					t.Fatalf("%v thread %d: taken branch without target", a, g)
				}
				if in.Dst.IsFP() && !in.Op.IsFPOp() && in.Op != isa.OpLoad {
					t.Fatalf("%v thread %d: FP destination on %v", a, g, in.Op)
				}
			}
		}
	}
}

func TestBarriersBalanced(t *testing.T) {
	// Every thread must pass every barrier instance the same number of
	// times or the machine hangs.
	for _, a := range Apps() {
		w := Build(params(a, 4, 2))
		counts := make([]map[uint64]int, 4)
		for g, s := range w.Streams {
			counts[g] = map[uint64]int{}
			for i := range s {
				if s[i].Op == isa.OpSyncWait && s[i].SyncTok&(0xF<<60) == machine.SyncBarrier {
					counts[g][s[i].SyncTok]++
				}
			}
		}
		for g := 1; g < 4; g++ {
			if len(counts[g]) != len(counts[0]) {
				t.Fatalf("%v: thread %d passes %d barrier instances, thread 0 passes %d",
					a, g, len(counts[g]), len(counts[0]))
			}
			for tok := range counts[0] {
				if counts[g][tok] != 1 {
					t.Fatalf("%v: thread %d barrier token %#x count %d", a, g, tok, counts[g][tok])
				}
			}
		}
	}
}

func TestLocksBalanced(t *testing.T) {
	for _, a := range Apps() {
		w := Build(params(a, 4, 2))
		for g, s := range w.Streams {
			acq, rel := 0, 0
			for i := range s {
				if s[i].Op == isa.OpSyncWait {
					switch s[i].SyncTok & (0xF << 60) {
					case machine.SyncLockAcq:
						acq++
					case machine.SyncLockRel:
						rel++
					}
				}
			}
			if acq != rel {
				t.Fatalf("%v thread %d: %d acquires vs %d releases", a, g, acq, rel)
			}
		}
	}
}

func TestLoopPCsStable(t *testing.T) {
	// A loop body must reuse the same PCs on every iteration (predictor and
	// I-cache realism).
	w := Build(params(FFT, 2, 2))
	pcCount := map[uint64]int{}
	for i := range w.Streams[0] {
		pcCount[w.Streams[0][i].PC]++
	}
	repeated := 0
	for _, c := range pcCount {
		if c > 1 {
			repeated++
		}
	}
	if repeated < 10 {
		t.Fatalf("expected loopy code; only %d repeated PCs", repeated)
	}
}

func TestCommunicationSignatures(t *testing.T) {
	// Compute-to-memory ratios must separate the compute-intensive
	// applications (LU, Water) from the memory-intensive ones (the paper's
	// two categories, §4.1).
	ratio := func(a App) float64 {
		w := Build(params(a, 4, 4))
		var mem, fp int
		for _, s := range w.Streams {
			for i := range s {
				switch {
				case s[i].Op.IsMem():
					mem++
				case s[i].Op.IsFPOp():
					fp++
				}
			}
		}
		return float64(fp) / float64(maxInt(mem, 1))
	}
	for _, heavy := range []App{LU, Water} {
		for _, light := range []App{FFT, Radix} {
			if ratio(heavy) <= ratio(light) {
				t.Fatalf("%v (%.2f) must be more compute-intensive than %v (%.2f)",
					heavy, ratio(heavy), light, ratio(light))
			}
		}
	}
}

func TestRemoteTrafficExists(t *testing.T) {
	// Each app must touch lines homed at other nodes (the DSM is pointless
	// otherwise). Approximate by checking a thread accesses addresses in
	// other threads' placed partitions.
	for _, a := range Apps() {
		w := Build(params(a, 4, 4))
		myRanges := map[int][][2]uint64{}
		for i, pl := range w.Places {
			_ = i
			myRanges[pl.Home] = append(myRanges[pl.Home], [2]uint64{pl.Addr, pl.Addr + pl.Size})
		}
		remote := 0
		s := w.Streams[0] // thread 0 lives on node 0
		for i := range s {
			if !s[i].Op.IsMem() || s[i].Addr == 0 {
				continue
			}
			for home, ranges := range myRanges {
				if home == 0 {
					continue
				}
				for _, r := range ranges {
					if s[i].Addr >= r[0] && s[i].Addr < r[1] {
						remote++
					}
				}
			}
		}
		if remote == 0 {
			t.Fatalf("%v: thread 0 never touches remote data", a)
		}
	}
}

func TestScaleGrowsWork(t *testing.T) {
	small := Build(Params{App: FFT, Threads: 2, Nodes: 2, Scale: 1, Seed: 1})
	big := Build(Params{App: FFT, Threads: 2, Nodes: 2, Scale: 4, Seed: 1})
	if big.TotalInstructions() <= small.TotalInstructions() {
		t.Fatal("Scale must grow the instruction count")
	}
}

func TestAttachRunsOnMachine(t *testing.T) {
	w := Build(params(Water, 2, 2))
	m := machine.New(machine.Config{Model: machine.SMTp, Nodes: 2, AppThreads: 1})
	Attach(m, w)
	_, done := m.Run(20_000_000)
	if !done {
		t.Fatal("Water did not complete on a 2-node SMTp machine")
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatalf("coherence: %v", err)
	}
	for g := 0; g < 2; g++ {
		if m.Nodes[g].Pipe.Retired[0] == 0 {
			t.Fatalf("thread %d retired nothing", g)
		}
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSliceSource([]isa.Instr{{Op: isa.OpNop}, {Op: isa.OpIntALU}})
	if s.Done() || s.Peek() == nil {
		t.Fatal("fresh source must have work")
	}
	s.Advance()
	s.Advance()
	if !s.Done() || s.Peek() != nil {
		t.Fatal("exhausted source must be done")
	}
}
