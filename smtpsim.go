package smtpsim

import (
	"context"
	"io"

	"smtpsim/internal/core"
	"smtpsim/internal/stats"
)

// The public facade: external importers use package smtpsim; internal/core
// remains the implementation. Everything here is a re-export, so the
// library API and the experiment drivers never diverge.

// Core types.
type (
	// Config selects one run; see Config.Validate for the legal shapes.
	Config = core.Config
	// Result carries every metric a run produces, plus host-side
	// observability (wall time, cycles/s, heap footprint) and Err for
	// validation failures, cancellation, and recovered panics.
	Result = core.Result
	// OccPair is a (peak, mean-of-peaks) occupancy pair as in Table 9.
	OccPair = core.OccPair
	// Model is one of the paper's five machine models (Table 4).
	Model = core.Model
	// App is one of the paper's six applications (Table 1).
	App = core.App
)

// Parallel experiment runner.
type (
	// Runner executes batches of independent simulations across a bounded
	// worker pool with deterministic, index-keyed results.
	Runner = core.Runner
	// Job is one unit of work for a Runner.
	Job = core.Job
	// Progress describes one finished job of a batch.
	Progress = core.Progress
	// ProgressFunc observes batch progress.
	ProgressFunc = core.ProgressFunc
)

// Experiment drivers and their table/figure types.
type (
	// Suite reproduces the paper's experiments (Figures 2-11, Tables 5-9).
	Suite = core.Suite
	// Figure is a normalized-execution-time comparison (Figures 2-11).
	Figure = core.Figure
	// FigureCell is one bar of a Figure.
	FigureCell = core.FigureCell
	// SpeedupTable reproduces Tables 5-6.
	SpeedupTable = core.SpeedupTable
	// OccupancyTable reproduces Table 7.
	OccupancyTable = core.OccupancyTable
	// ProtoCharTable reproduces Table 8.
	ProtoCharTable = core.ProtoCharTable
	// ResourceTable reproduces Table 9.
	ResourceTable = core.ResourceTable
)

// Observability: every run's Result carries a Metrics snapshot of the
// machine-wide registry (stable dotted names, documented in METRICS.md) and,
// when Config.MetricsInterval is set, a cycle-sampled Series.
type (
	// Snapshot is a point-in-time, name-sorted flattening of the metrics
	// registry; identical runs serialize to identical JSON/CSV bytes.
	Snapshot = stats.Snapshot
	// Sample is one flattened scalar of a Snapshot.
	Sample = stats.Sample
	// Series is a cycle-sampled metric time series (ring-buffered; the
	// newest Config.MetricsDepth samples are kept).
	Series = stats.Series
	// SeriesSample is one sampling instant of a Series.
	SeriesSample = stats.SeriesSample
)

// The five machine models of Table 4.
const (
	Base       = core.Base
	IntPerfect = core.IntPerfect
	Int512KB   = core.Int512KB
	Int64KB    = core.Int64KB
	SMTp       = core.SMTp
)

// The six applications of Table 1.
const (
	FFT   = core.FFT
	FFTW  = core.FFTW
	LU    = core.LU
	Ocean = core.Ocean
	Radix = core.Radix
	Water = core.Water
)

// Named extension points: Config.Tweak and Config.Proto select registered
// pipeline tweaks and coherence protocols by name, which keeps every config
// serializable — json.Marshal/Unmarshal round-trip the canonical encoding,
// and Config.Hash is the content address the simulation service caches
// results under (DESIGN.md §12).
const (
	// ProtoBase is the stock directory protocol (the default).
	ProtoBase = core.ProtoBase
	// ProtoRevive is the ReVive-style logging protocol of the §6 study.
	ProtoRevive = core.ProtoRevive

	// TweakNoLAS disables SMTp look-ahead scheduling (§2.3 ablation).
	TweakNoLAS = core.TweakNoLAS
	// TweakPerfectProtoCaches gives the protocol thread private perfect
	// caches (§2.1 cache-pollution ablation).
	TweakPerfectProtoCaches = core.TweakPerfectProtoCaches
	// TweakSlowBitOps removes the special bit-manipulation ALU ops.
	TweakSlowBitOps = core.TweakSlowBitOps
)

// TweakNames lists every registered pipeline tweak, sorted. (Registering
// new tweaks and protocols happens inside internal/core — they manipulate
// internal pipeline and coherence state — but selection by name is public.)
func TweakNames() []string { return core.TweakNames() }

// ProtocolNames lists every registered coherence protocol, sorted.
func ProtocolNames() []string { return core.ProtocolNames() }

// ParseModel resolves a machine-model name case-insensitively.
func ParseModel(s string) (Model, error) { return core.ParseModel(s) }

// ParseApp resolves an application name case-insensitively.
func ParseApp(s string) (App, error) { return core.ParseApp(s) }

// Models lists the five machine models in paper order.
func Models() []Model { return core.Models() }

// Apps lists the six applications in paper order.
func Apps() []App { return core.Apps() }

// Run builds the machine and workload and runs to completion.
func Run(cfg Config) *Result { return core.Run(cfg) }

// RunContext is Run with cancellation: the machine polls ctx roughly every
// million simulated cycles and returns a partial Result with
// Completed == false (and Err == ctx.Err()) when cancelled.
func RunContext(ctx context.Context, cfg Config) *Result { return core.RunContext(ctx, cfg) }

// WriteRunJSON writes one run's outcome — configuration header, cycle
// count, completion flag, and the full metrics snapshot — as a
// deterministic JSON document (host wall time is excluded, so identical
// configurations produce identical bytes).
func WriteRunJSON(w io.Writer, r *Result) error { return core.WriteRunJSON(w, r) }
